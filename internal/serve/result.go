package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"llmbw/internal/sim"
)

// Percentiles summarizes a latency distribution with nearest-rank
// percentiles. Fields are integer nanoseconds so encoded results are
// byte-stable across runs and platforms.
type Percentiles struct {
	Mean sim.Time `json:"mean_ns"`
	P50  sim.Time `json:"p50_ns"`
	P95  sim.Time `json:"p95_ns"`
	P99  sim.Time `json:"p99_ns"`
	Max  sim.Time `json:"max_ns"`
}

// percentiles computes nearest-rank percentiles over samples (consumed:
// sorted in place). Zero value for an empty set.
func percentiles(samples []sim.Time) Percentiles {
	if len(samples) == 0 {
		return Percentiles{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum sim.Time
	for _, s := range samples {
		sum += s
	}
	rank := func(p float64) sim.Time {
		i := int(p*float64(len(samples))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(samples) {
			i = len(samples) - 1
		}
		return samples[i]
	}
	return Percentiles{
		Mean: sum / sim.Time(len(samples)),
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Max:  samples[len(samples)-1],
	}
}

// Result is the outcome of one serving scenario. All times are integer
// nanoseconds and all derived rates are computed the same way every run, so
// an encoded Result is byte-stable.
type Result struct {
	Name          string `json:"name"`
	Model         string `json:"model"`
	TP            int    `json:"tensor_parallel"`
	Nodes         int    `json:"nodes"`
	Disaggregated bool   `json:"disaggregated"`
	Topo          string `json:"topo"`
	Arrival       string `json:"arrival"`

	Requests  int      `json:"requests"`
	Measured  int      `json:"measured"` // completions after warmup
	SLOOk     int      `json:"slo_ok"`   // measured completions meeting both SLOs
	Makespan  sim.Time `json:"makespan_ns"`
	TokensOut int64    `json:"tokens_out"` // generated tokens of measured requests

	OfferedRPS    float64 `json:"offered_rps"`
	ThroughputRPS float64 `json:"throughput_rps"`
	GoodputRPS    float64 `json:"goodput_rps"`
	TokensPerSec  float64 `json:"tokens_per_sec"`

	TTFT Percentiles `json:"ttft"`
	TBT  Percentiles `json:"tbt"`

	DecodeSteps   int64   `json:"decode_steps"`
	MeanBatch     float64 `json:"mean_batch"`
	KVPeakBytes   float64 `json:"kv_peak_bytes"`   // per GPU
	KVCapBytes    float64 `json:"kv_cap_bytes"`    // per GPU
	KVPeakPercent float64 `json:"kv_peak_percent"` // peak / capacity

	reqs []request // retained for WriteRequestLog
}

// result assembles the testbed runner's Result.
func (r *Runner) result(end sim.Time) *Result {
	return buildResult(r.cfg, r.reqs, end, r.steps, r.batchSum, r.kvPeak, r.kvCap)
}

// buildResult computes the scenario metrics from the completed request set.
// The warmup window is defined in completion order: the first cfg.Warmup
// completions are excluded from every latency and rate metric.
func buildResult(cfg Config, reqs []request, end sim.Time, steps, batchSum int64, kvPeak, kvCap float64) *Result {
	res := &Result{
		Name:          cfg.Name(),
		Model:         cfg.Model.String(),
		TP:            cfg.TensorParallel,
		Nodes:         cfg.Nodes,
		Disaggregated: cfg.Disaggregated,
		Topo:          cfg.Topo,
		Arrival:       cfg.Arrival.String(),
		Requests:      len(reqs),
		Makespan:      end,
		DecodeSteps:   steps,
		KVPeakBytes:   kvPeak,
		KVCapBytes:    kvCap,
		reqs:          reqs,
	}
	if cfg.Arrival == OpenLoop {
		res.OfferedRPS = cfg.RatePerSec
	}
	if steps > 0 {
		res.MeanBatch = float64(batchSum) / float64(steps)
	}
	if kvCap > 0 {
		res.KVPeakPercent = 100 * kvPeak / kvCap
	}

	// Completion order defines the warmup window.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		qa, qb := &reqs[order[a]], &reqs[order[b]]
		if qa.done != qb.done {
			return qa.done < qb.done
		}
		return qa.id < qb.id
	})
	measured := order[cfg.Warmup:]
	res.Measured = len(measured)
	if len(measured) == 0 {
		return res
	}

	ttft := make([]sim.Time, 0, len(measured))
	tbt := make([]sim.Time, 0, len(measured))
	var windowStart sim.Time
	if cfg.Warmup > 0 {
		windowStart = reqs[order[cfg.Warmup-1]].done
	}
	windowEnd := reqs[order[len(order)-1]].done
	for _, i := range measured {
		q := &reqs[i]
		ttft = append(ttft, q.ttft())
		if q.decode > 1 {
			tbt = append(tbt, q.tbt())
		}
		res.TokensOut += int64(q.decode)
		if q.ttft() <= cfg.SLOTTFT && q.tbt() <= cfg.SLOTBT {
			res.SLOOk++
		}
	}
	if span := windowEnd - windowStart; span > 0 {
		secs := span.ToSeconds()
		res.ThroughputRPS = float64(res.Measured) / secs
		res.GoodputRPS = float64(res.SLOOk) / secs
		res.TokensPerSec = float64(res.TokensOut) / secs
	}
	res.TTFT = percentiles(ttft)
	res.TBT = percentiles(tbt)
	return res
}

// String renders the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d req, %.1f req/s (%.1f goodput), %.0f tok/s, TTFT p99 %v, TBT p99 %v, KV peak %.0f%%",
		r.Name, r.Requests, r.ThroughputRPS, r.GoodputRPS, r.TokensPerSec,
		r.TTFT.P99, r.TBT.P99, r.KVPeakPercent)
}

// WriteJSON writes the result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteRequestLog writes the per-request NDJSON log in request-id order:
// one line per request with integer-nanosecond fields only, the byte-stable
// artifact the determinism A/B harness compares across engine shard counts.
func (r *Result) WriteRequestLog(w io.Writer) error {
	for i := range r.reqs {
		q := &r.reqs[i]
		_, err := fmt.Fprintf(w,
			"{\"id\":%d,\"arrival_ns\":%d,\"prompt_tokens\":%d,\"decode_tokens\":%d,\"admit_ns\":%d,\"first_token_ns\":%d,\"done_ns\":%d,\"ttft_ns\":%d,\"tbt_ns\":%d}\n",
			q.id, int64(q.arrival), q.prompt, q.decode,
			int64(q.admit), int64(q.first), int64(q.done),
			int64(q.ttft()), int64(q.tbt()))
		if err != nil {
			return err
		}
	}
	return nil
}
