package serve

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"llmbw/internal/sim"
)

// smallCfg is a quick testbed scenario shared by the smoke tests.
func smallCfg() Config {
	return Config{
		Requests:     24,
		RatePerSec:   16,
		PromptTokens: 256,
		DecodeTokens: 16,
		MaxBatch:     8,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// checkSane verifies the invariants every completed scenario must satisfy.
func checkSane(t *testing.T, res *Result) {
	t.Helper()
	if res.Measured != res.Requests {
		t.Errorf("%s: measured %d of %d requests", res.Name, res.Measured, res.Requests)
	}
	if res.Makespan <= 0 {
		t.Errorf("%s: non-positive makespan %v", res.Name, res.Makespan)
	}
	if res.TTFT.P50 <= 0 || res.TTFT.Max < res.TTFT.P99 || res.TTFT.P99 < res.TTFT.P50 {
		t.Errorf("%s: malformed TTFT percentiles %+v", res.Name, res.TTFT)
	}
	if res.TBT.P50 <= 0 {
		t.Errorf("%s: non-positive TBT p50", res.Name)
	}
	if res.DecodeSteps <= 0 || res.MeanBatch < 1 {
		t.Errorf("%s: implausible decode stats: %d steps, mean batch %.2f",
			res.Name, res.DecodeSteps, res.MeanBatch)
	}
	if res.KVPeakBytes <= 0 || res.KVPeakBytes > res.KVCapBytes {
		t.Errorf("%s: KV peak %.0f outside (0, %.0f]", res.Name, res.KVPeakBytes, res.KVCapBytes)
	}
	for i := range res.reqs {
		q := &res.reqs[i]
		if q.first < q.arrival || q.done < q.first || q.decoded != q.decode {
			t.Fatalf("%s: request %d has inconsistent lifecycle %+v", res.Name, q.id, *q)
		}
	}
}

func TestServeColocatedOpenLoop(t *testing.T) {
	checkSane(t, mustRun(t, smallCfg()))
}

func TestServeClosedLoop(t *testing.T) {
	cfg := smallCfg()
	cfg.Arrival = ClosedLoop
	cfg.Concurrency = 4
	res := mustRun(t, cfg)
	checkSane(t, res)
	if res.OfferedRPS != 0 {
		t.Errorf("closed loop reports offered load %v", res.OfferedRPS)
	}
}

func TestServeTraceDriven(t *testing.T) {
	cfg := smallCfg()
	cfg.Arrival = TraceDriven
	cfg.Trace = []TraceReq{
		{At: 0, PromptTokens: 128, DecodeTokens: 8},
		{At: sim.Millisecond, PromptTokens: 700, DecodeTokens: 1},
		{At: 2 * sim.Millisecond, PromptTokens: 64, DecodeTokens: 24},
	}
	res := mustRun(t, cfg)
	checkSane(t, res)
	if res.Requests != len(cfg.Trace) {
		t.Fatalf("trace run simulated %d requests, want %d", res.Requests, len(cfg.Trace))
	}
	// The single-token request completes at its first token.
	q := &res.reqs[1]
	if q.done != q.first {
		t.Errorf("single-token request: done %v != first token %v", q.done, q.first)
	}
}

func TestServeDisaggregated(t *testing.T) {
	cfg := smallCfg()
	cfg.Disaggregated = true
	res := mustRun(t, cfg)
	checkSane(t, res)

	// Shipping the KV cache across the RoCE fabric must cost first-token
	// latency relative to the colocated placement under light load.
	colo := mustRun(t, smallCfg())
	if res.TTFT.P50 <= colo.TTFT.P50 {
		t.Errorf("disaggregated TTFT p50 %v not above colocated %v (KV shipment is free?)",
			res.TTFT.P50, colo.TTFT.P50)
	}
}

// TestServeDisaggregatedBandwidth pins the paper's bandwidth sensitivity on
// the serving path: starving the inter-node fabric must inflate TTFT, since
// every admitted request's KV cache crosses it.
func TestServeDisaggregatedBandwidth(t *testing.T) {
	cfg := smallCfg()
	cfg.Disaggregated = true
	fast := mustRun(t, cfg)
	cfg.RoCEBW = 1.25e9 // 10 GbE-class
	slow := mustRun(t, cfg)
	if slow.TTFT.P50 <= fast.TTFT.P50 {
		t.Errorf("TTFT p50 did not grow when fabric bandwidth dropped: %v vs %v",
			slow.TTFT.P50, fast.TTFT.P50)
	}
	// Decode never touches the inter-node fabric, so TBT must be unchanged.
	if slow.TBT.P50 != fast.TBT.P50 {
		t.Errorf("TBT p50 changed with fabric bandwidth: %v vs %v", slow.TBT.P50, fast.TBT.P50)
	}
}

// TestServeTPSensitivity: decode is memory-bound, so widening tensor
// parallelism (splitting the weight sweep) must shrink time between tokens.
func TestServeTPSensitivity(t *testing.T) {
	cfg := smallCfg()
	cfg.TensorParallel = 1
	tp1 := mustRun(t, cfg)
	cfg.TensorParallel = 4
	tp4 := mustRun(t, cfg)
	if tp4.TBT.P50 >= tp1.TBT.P50 {
		t.Errorf("TBT p50 did not improve with TP: tp4 %v vs tp1 %v", tp4.TBT.P50, tp1.TBT.P50)
	}
}

func TestServeDCTopos(t *testing.T) {
	for _, tc := range []struct {
		topo   string
		disagg bool
	}{
		{"fat-tree:nodes=8", false},
		{"fat-tree:nodes=8", true},
		{"rail-only:nodes=8,pod=1", true},
		{"dragonfly:nodes=8", false},
	} {
		cfg := smallCfg()
		cfg.Topo = tc.topo
		cfg.Disaggregated = tc.disagg
		res := mustRun(t, cfg)
		checkSane(t, res)
		if res.Nodes != 8 {
			t.Errorf("%s: result reports %d nodes, want 8", res.Name, res.Nodes)
		}
	}
}

// TestServeDCBandwidth: on a disaggregated fat-tree, KV shipment crosses the
// rail NICs, so cutting NIC bandwidth must inflate TTFT.
func TestServeDCBandwidth(t *testing.T) {
	cfg := smallCfg()
	cfg.Topo = "fat-tree:nodes=8"
	cfg.Disaggregated = true
	fast := mustRun(t, cfg)
	cfg.NICBW = 2.5e9
	slow := mustRun(t, cfg)
	if slow.TTFT.P50 <= fast.TTFT.P50 {
		t.Errorf("DC TTFT p50 did not grow when NIC bandwidth dropped: %v vs %v",
			slow.TTFT.P50, fast.TTFT.P50)
	}
}

// requestLog renders the scenario's per-request NDJSON log.
func requestLog(t *testing.T, cfg Config) string {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteRequestLog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestServeDeterminismAB pins the determinism contract: the per-request log
// is byte-identical across engine shard counts and across serial-merge vs
// parallel-window execution, for every placement and fabric family.
func TestServeDeterminismAB(t *testing.T) {
	defer func(s bool) { sim.Sharded = s }(sim.Sharded)
	for _, base := range []struct {
		name string
		cfg  Config
	}{
		{"colocated", smallCfg()},
		{"disaggregated", func() Config { c := smallCfg(); c.Disaggregated = true; return c }()},
		{"dc-fat-tree", func() Config { c := smallCfg(); c.Topo = "fat-tree:nodes=8"; c.Disaggregated = true; return c }()},
	} {
		sim.Sharded = false
		ref := requestLog(t, base.cfg)
		if ref == "" {
			t.Fatalf("%s: empty request log", base.name)
		}
		for _, shards := range []int{1, 2, 4} {
			for _, parallel := range []bool{false, true} {
				sim.Sharded = parallel
				cfg := base.cfg
				cfg.Shards = shards
				if got := requestLog(t, cfg); got != ref {
					t.Errorf("%s: request log diverged at shards=%d parallel=%v",
						base.name, shards, parallel)
				}
			}
		}
	}
}

// steadyRunner builds a colocated runner whose decode batch can be pinned
// full: closed loop at full concurrency, long generations.
func steadyRunner(tb testing.TB) *Runner {
	cfg := Config{
		Arrival:      ClosedLoop,
		Concurrency:  8,
		Requests:     8,
		MaxBatch:     8,
		PromptTokens: 256,
		DecodeTokens: 128,
		Window:       1 << 40,
	}
	r, err := NewRunner(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

// fillBatch admits every request and runs its prefill, leaving the decode
// batch at full width.
func fillBatch(r *Runner, p *sim.Proc) {
	r.stepWaiter = sim.NewWaiter(p)
	r.preWaiter = r.stepWaiter
	for r.nextArr < len(r.reqs) {
		q := &r.reqs[r.nextArr]
		r.reserve(q, p.Now())
		r.runPrefill(q)
	}
	r.admitReady()
}

// TestServeDecodeReplayAllocFree pins the serving tentpole's steady-state
// claim: once the executor pools are warm, replaying decode steps allocates
// nothing.
func TestServeDecodeReplayAllocFree(t *testing.T) {
	r := steadyRunner(t)
	const measured = 8
	var mallocs uint64
	r.eng.Go("alloc-probe", func(p *sim.Proc) {
		fillBatch(r, p)
		for i := 0; i < 4; i++ {
			r.decodeStep() // warm every executor pool
		}
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for i := 0; i < measured; i++ {
			r.decodeStep()
		}
		runtime.ReadMemStats(&m1)
		mallocs = m1.Mallocs - m0.Mallocs
		if r.bn != len(r.batch) {
			t.Errorf("decode batch drained to %d during measurement", r.bn)
		}
	})
	r.eng.Run()
	if got := float64(mallocs) / measured; got != 0 {
		t.Errorf("steady decode replay allocates %v allocs/step, want 0", got)
	}
}

// BenchmarkServeDecodeSteady measures one full-batch decode step end to end
// (roofline span, two tensor-parallel all-reduces through compiled plans,
// event core). Allocs/op is pinned at zero by TestServeDecodeReplayAllocFree.
func BenchmarkServeDecodeSteady(b *testing.B) {
	r := steadyRunner(b)
	r.eng.Go("bench", func(p *sim.Proc) {
		fillBatch(r, p)
		for i := 0; i < 4; i++ {
			r.decodeStep()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < r.bn; j++ {
				r.batch[j].decoded = 1 // hold the batch at full width
			}
			r.decodeStep()
		}
	})
	r.eng.Run()
}

func TestServeRunCached(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	cfg := smallCfg()
	a, err := RunCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCached(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical configs did not share one cached result")
	}
	st := RunCacheStats()
	if st.Name != "serve.results" || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("unexpected cache stats %+v", st)
	}
}

func TestServeConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"tp", func(c *Config) { c.TensorParallel = 5 }},
		{"warmup", func(c *Config) { c.Warmup = 99 }},
		{"batch", func(c *Config) { c.MaxBatch = MaxBatchLimit + 1 }},
		{"nodes", func(c *Config) { c.Nodes = 3 }},
		{"disagg-nodes", func(c *Config) { c.Disaggregated = true; c.Nodes = 1 }},
		{"trace", func(c *Config) { c.Arrival = TraceDriven }},
		{"topo", func(c *Config) { c.Topo = "mesh:nodes=8" }},
		{"kv", func(c *Config) { c.PromptTokens = 1 << 20 }},
	} {
		cfg := smallCfg()
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestArrivalRoundTrip(t *testing.T) {
	for _, a := range []Arrival{OpenLoop, ClosedLoop, TraceDriven} {
		got, err := ParseArrival(a.String())
		if err != nil || got != a {
			t.Errorf("ParseArrival(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseArrival("bogus"); err == nil {
		t.Error("bogus arrival accepted")
	}
	if got := fmt.Sprint(Arrival(9)); got != "Arrival(9)" {
		t.Errorf("unexpected arrival string %q", got)
	}
}
