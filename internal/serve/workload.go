package serve

import (
	"math"

	"llmbw/internal/sim"
)

// unreleased marks a closed-loop request that has not been released yet; a
// completion rewrites it with the release time.
const unreleased = sim.Time(math.MaxInt64)

// request is the lifetime record of one inference request. The slice of
// requests is allocated once before the simulation starts; the steady serving
// loops only mutate fields in place.
type request struct {
	id      int
	arrival sim.Time // enters the system (unreleased for pending closed-loop)
	prompt  int      // prompt tokens
	decode  int      // tokens to generate

	admit   sim.Time // prefill admission
	first   sim.Time // first output token emitted (end of prefill [+KV ship])
	done    sim.Time // last token emitted
	decoded int      // tokens generated so far
	kv      float64  // per-GPU KV bytes reserved while resident
}

// ttft returns the time-to-first-token of a completed request.
func (r *request) ttft() sim.Time { return r.first - r.arrival }

// tbt returns the mean time-between-tokens of a completed request (0 for
// single-token generations).
func (r *request) tbt() sim.Time {
	if r.decode <= 1 {
		return 0
	}
	return (r.done - r.first) / sim.Time(r.decode-1)
}

// rng is splitmix64: tiny, deterministic and identical on every platform, so
// generated workloads are part of the byte-stable scenario contract.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0,1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// exp returns an exponential draw with the given mean.
func (r *rng) exp(mean float64) float64 {
	return -mean * math.Log(1-r.float())
}

// tokens draws a length uniformly in [mean/2, 3·mean/2], never below 1. A
// bounded spread keeps per-request KV footprints within the capacity bound
// that Validate checks while still exercising bucketed program selection.
func (r *rng) tokens(mean int) int {
	lo := mean / 2
	if lo < 1 {
		lo = 1
	}
	n := lo + int(r.float()*float64(mean))
	if n < 1 {
		n = 1
	}
	return n
}

// generate materializes the full request sequence of the scenario up front.
// Everything downstream (admission, batching, completion) consumes this fixed
// deterministic sequence, so a run is a pure function of the Config.
func generate(cfg Config) []request {
	reqs := make([]request, cfg.Requests)
	r := rng{s: cfg.Seed}
	var at sim.Time
	for i := range reqs {
		q := &reqs[i]
		q.id = i
		switch cfg.Arrival {
		case OpenLoop:
			at += sim.Seconds(r.exp(1 / cfg.RatePerSec))
			q.arrival = at
		case ClosedLoop:
			if i < cfg.Concurrency {
				q.arrival = 0
			} else {
				q.arrival = unreleased
			}
		case TraceDriven:
			q.arrival = cfg.Trace[i].At
		}
		if cfg.Arrival == TraceDriven {
			q.prompt = max(1, cfg.Trace[i].PromptTokens)
			q.decode = max(1, cfg.Trace[i].DecodeTokens)
		} else {
			q.prompt = r.tokens(cfg.PromptTokens)
			q.decode = r.tokens(cfg.DecodeTokens)
		}
	}
	return reqs
}
