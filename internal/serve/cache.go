package serve

import "llmbw/internal/scenario"

// The serving result tier mirrors train.results: a Result is a deterministic
// pure function of its Config and is treated as immutable by every consumer,
// so identical what-if sweep points and repeated POST /serve requests share
// one simulation.

// DefaultRunCacheCap bounds the serve result tier. Serving sweeps are
// smaller than training matrices; 256 covers the full what-if studies.
const DefaultRunCacheCap = 256

var runCache = scenario.New("serve.results", DefaultRunCacheCap)

// RunCached executes the scenario, reusing the Result of an identical
// earlier run in this process.
func RunCached(cfg Config) (*Result, error) {
	key := scenario.Intern(cfg.withDefaults().ScenarioKey())
	v, err := runCache.Do(key, 0, func() (any, error) {
		res, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*Result), nil
}

// RunCacheStats snapshots the serve result tier's counters for stats probes.
func RunCacheStats() scenario.Stats { return runCache.Stats() }

// SetRunCacheCap rebounds the serve result tier; cap <= 0 removes the bound.
func SetRunCacheCap(capacity int) { runCache.SetCap(capacity) }

// ResetRunCache drops all memoized serving results.
func ResetRunCache() { runCache.Reset() }
