package serve

import (
	"fmt"

	"llmbw/internal/collective"
	"llmbw/internal/compute"
	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/schedule"
	"llmbw/internal/sim"
	"llmbw/internal/topology"
)

// Runner executes one serving scenario on the paper's testbed cluster. All
// per-request state lives in the preallocated request slice and the fixed
// ready/batch arrays; the steady decode loop (admitReady/decodeStep) only
// replays pooled executors and mutates that state in place, so warm token
// generation allocates nothing.
type Runner struct {
	cfg     Config
	cluster *topology.Cluster
	eng     *sim.Engine
	gpu     compute.GPUModel

	preGroup *collective.Group             // tensor-parallel group serving prefill
	decGroup *collective.Group             // tensor-parallel group serving decode
	preExec  map[int]*schedule.Executor    // by prompt bucket
	decExec  map[[2]int]*schedule.Executor // by (batch, ctx bucket index)

	reqs []request

	// Derived per-GPU quantities (tensor-parallel shards).
	weightBytes float64 // resident FP16 weight image
	kvPerTok    float64 // KV bytes per token
	kvCap       float64 // KV capacity

	// Live serving state.
	batch    []*request // current decode batch, dense in [0,bn)
	bn       int
	ready    []*request // prefilled, waiting to join the batch (FIFO ring)
	rHead    int
	rTail    int
	inflight int // admitted, not yet completed
	nextArr  int // admission cursor (requests admit in id order)
	released int // closed-loop release cursor
	done     int // completed requests

	kvUsed float64
	kvPeak float64

	// Cross-proc wakeups (disaggregated placement runs prefill and decode as
	// separate procs; colocated placement runs one proc and never blocks on
	// these).
	decodeWaiting  bool
	prefillWaiting bool
	decodeIdle     *sim.Waiter
	prefillIdle    *sim.Waiter
	stepWaiter     *sim.Waiter // decode executor completion
	preWaiter      *sim.Waiter // prefill executor completion

	steps    int64 // decode steps executed
	batchSum int64 // Σ batch size over steps
}

// serveEnv binds the serving programs to the live cluster. KV residency is
// accounted by the runner at admission/completion (exact token counts), not
// through schedule memory ops (which would be bucket-quantized), so
// MemAlloc/MemFree are inert; tracing is off on the serving path.
type serveEnv struct {
	r       *Runner
	prefill bool
}

func (e serveEnv) Engine() *sim.Engine      { return e.r.eng }
func (e serveEnv) Network() *fabric.Network { return e.r.cluster.Net }

func (e serveEnv) World() *collective.Group {
	if e.prefill {
		return e.r.preGroup
	}
	return e.r.decGroup
}

func (e serveEnv) MemAlloc(float64)                             {}
func (e serveEnv) MemFree(float64)                              {}
func (e serveEnv) TraceOp(op *schedule.Op, start, end sim.Time) {}
func (e serveEnv) NVMeTargets() []schedule.NVMeTarget           { return nil }

// FlowBuilder resolves the disaggregated KV shipment: one GPUDirect RoCE
// flow per tensor-parallel rank from the prefill node's GPU to its decode
// peer, each NIC serving its own socket's GPUs. Runs only on pool miss.
func (e serveEnv) FlowBuilder(op *schedule.Op) func() []*fabric.Flow {
	if op.Kind != schedule.OpXfer {
		panic(fmt.Sprintf("serve: no flow builder for op kind %d", int(op.Kind)))
	}
	bytes := op.Bytes
	return func() []*fabric.Flow {
		flows := make([]*fabric.Flow, e.r.cfg.TensorParallel)
		for i := range flows {
			src := topology.GPU{Node: 0, Index: i}
			dst := topology.GPU{Node: 1, Index: i}
			route := e.r.cluster.GPUToRemoteGPUVia(src, dst, src.Socket(), dst.Socket())
			flows[i] = route.Flow(fmt.Sprintf("kv-ship-g%d", i), bytes)
		}
		return flows
	}
}

// NewRunner builds the cluster, generates the deterministic workload and
// eagerly compiles every prefill/decode program shape the workload can
// present (so the serving loops only ever look programs up).
func NewRunner(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tcfg := topology.DefaultConfig(cfg.Nodes)
	tcfg.Shards = cfg.Shards
	tcfg.Window = cfg.Window
	tcfg.RoCEBW = cfg.RoCEBW
	cluster := topology.New(tcfg)

	r := &Runner{
		cfg:     cfg,
		cluster: cluster,
		eng:     cluster.Eng,
		gpu:     compute.DefaultGPU(),
		reqs:    generate(cfg),
	}
	tp := cfg.TensorParallel
	r.weightBytes = memory.ServeWeightBytesPerGPU(cfg.Model, tp)
	r.kvPerTok = memory.KVBytesPerToken(cfg.Model) / float64(tp)
	r.kvCap = memory.ServeKVCapacityPerGPU(cfg.Model, tp)

	ranks := func(node int) []topology.GPU {
		gs := make([]topology.GPU, tp)
		for i := range gs {
			gs[i] = topology.GPU{Node: node, Index: i}
		}
		return gs
	}
	decNode := 0
	if cfg.Disaggregated {
		decNode = 1
	}
	r.decGroup = collective.NewGroup(cluster, ranks(decNode))
	if cfg.Disaggregated {
		r.preGroup = collective.NewGroup(cluster, ranks(0))
	} else {
		r.preGroup = r.decGroup
	}

	r.batch = make([]*request, cfg.MaxBatch)
	r.ready = make([]*request, len(r.reqs))
	if cfg.Arrival == ClosedLoop {
		r.released = cfg.Concurrency
		if r.released > len(r.reqs) {
			r.released = len(r.reqs)
		}
	}

	// Compile every program shape the workload can present.
	maxCtx := 0
	r.preExec = make(map[int]*schedule.Executor)
	for i := range r.reqs {
		q := &r.reqs[i]
		if c := q.prompt + q.decode; c > maxCtx {
			maxCtx = c
		}
		pb := promptBucket(q.prompt)
		if _, ok := r.preExec[pb]; !ok {
			r.preExec[pb] = schedule.NewExecutor(serveEnv{r: r, prefill: true}, r.compilePrefill(pb))
		}
	}
	maxCB := ctxBucketIdx(maxCtx)
	r.decExec = make(map[[2]int]*schedule.Executor, cfg.MaxBatch*maxCB)
	for b := 1; b <= cfg.MaxBatch; b++ {
		for cb := 1; cb <= maxCB; cb++ {
			r.decExec[[2]int{b, cb}] = schedule.NewExecutor(serveEnv{r: r}, r.compileDecode(b, cb))
		}
	}
	return r, nil
}

// kvFits reports whether q's full conservative KV reservation (prompt plus
// every token it will generate) fits the decode-side capacity.
func (r *Runner) kvFits(q *request) bool {
	return r.kvUsed+float64(q.prompt+q.decode)*r.kvPerTok <= r.kvCap
}

// reserve admits q: reserves its KV footprint on the decode side for its
// whole lifetime (vLLM-style reserve-ahead, which can never deadlock
// mid-generation) and advances the admission cursor.
func (r *Runner) reserve(q *request, now sim.Time) {
	q.admit = now
	q.kv = float64(q.prompt+q.decode) * r.kvPerTok
	r.kvUsed += q.kv
	if r.kvUsed > r.kvPeak {
		r.kvPeak = r.kvUsed
	}
	r.inflight++
	r.nextArr++
}

// complete retires q at time now: frees its KV reservation, releases the
// next closed-loop request, and wakes whichever proc was waiting for
// capacity or for the final completion.
func (r *Runner) complete(q *request, now sim.Time) {
	q.done = now
	r.kvUsed -= q.kv
	r.inflight--
	r.done++
	if r.cfg.Arrival == ClosedLoop && r.released < len(r.reqs) {
		r.reqs[r.released].arrival = now
		r.released++
	}
	r.wakePrefill()
	r.wakeDecode()
}

// The wake helpers signal a proc parked on its idle waiter. Done must run
// from engine context, and these are reached from the other proc's
// goroutine, so the signal hops through a zero-delay event.
func (r *Runner) wakeDecode() {
	if r.decodeWaiting {
		r.decodeWaiting = false
		r.eng.Schedule(0, r.decodeIdle.DoneFunc())
	}
}

func (r *Runner) wakePrefill() {
	if r.prefillWaiting {
		r.prefillWaiting = false
		r.eng.Schedule(0, r.prefillIdle.DoneFunc())
	}
}

// runPrefill replays the request's prefill program (blocking its proc) and
// emits the first token: the request either completes immediately
// (single-token generations) or becomes ready for the decode batch.
func (r *Runner) runPrefill(q *request) {
	ex := r.preExec[promptBucket(q.prompt)]
	ex.Run(r.preWaiter.DoneFunc())
	r.preWaiter.Wait()
	now := r.eng.Now()
	q.first = now
	q.decoded = 1
	if q.decoded >= q.decode {
		r.complete(q, now)
		return
	}
	r.ready[r.rTail] = q
	r.rTail++
	r.wakeDecode()
}

// admitReady moves prefilled requests into the decode batch up to the
// continuous-batching cap.
//
//lint:steady
func (r *Runner) admitReady() {
	for r.rHead < r.rTail && r.bn < len(r.batch) {
		r.batch[r.bn] = r.ready[r.rHead]
		r.ready[r.rHead] = nil
		r.bn++
		r.rHead++
	}
}

// decodeStep generates one token for every request in the batch: replay the
// compiled program for the batch's (size, context bucket) shape, then retire
// finished requests in place. This is the warm serving path — it must not
// allocate.
//
//lint:steady
func (r *Runner) decodeStep() {
	maxCtx := 0
	for i := 0; i < r.bn; i++ {
		q := r.batch[i]
		if c := q.prompt + q.decoded; c > maxCtx {
			maxCtx = c
		}
	}
	ex := r.decExec[[2]int{r.bn, ctxBucketIdx(maxCtx)}]
	ex.Run(r.stepWaiter.DoneFunc())
	r.stepWaiter.Wait()
	now := r.eng.Now()
	r.steps++
	r.batchSum += int64(r.bn)
	w := 0
	for i := 0; i < r.bn; i++ {
		q := r.batch[i]
		q.decoded++
		if q.decoded >= q.decode {
			r.complete(q, now)
		} else {
			r.batch[w] = q
			w++
		}
	}
	for i := w; i < r.bn; i++ {
		r.batch[i] = nil
	}
	r.bn = w
}

// serveColocated runs both phases in one proc on the node's GPUs: an
// admissible arrival's prefill preempts decode (prefill-priority continuous
// batching), which is exactly the decode stall disaggregation removes.
func (r *Runner) serveColocated(p *sim.Proc) {
	r.stepWaiter = sim.NewWaiter(p)
	r.preWaiter = r.stepWaiter
	for r.done < len(r.reqs) {
		now := p.Now()
		if q := r.admissible(now); q != nil {
			r.reserve(q, now)
			r.runPrefill(q)
			r.admitReady()
			continue
		}
		if r.bn > 0 {
			r.decodeStep()
			continue
		}
		// Idle: everything in flight is done and the next arrival is in the
		// future (closed-loop releases keep at least one request admissible,
		// so the cursor's arrival time here is always concrete).
		p.Sleep(r.reqs[r.nextArr].arrival - now)
	}
}

// admissible returns the next request that has arrived and fits (batch room
// and KV capacity), or nil.
func (r *Runner) admissible(now sim.Time) *request {
	if r.nextArr >= len(r.reqs) {
		return nil
	}
	q := &r.reqs[r.nextArr]
	if q.arrival > now || r.inflight >= r.cfg.MaxBatch || !r.kvFits(q) {
		return nil
	}
	return q
}

// servePrefill is the disaggregated prefill proc on node 0: admit arrivals
// in order, run their prompt pass, ship the KV cache and hand them to the
// decode node.
func (r *Runner) servePrefill(p *sim.Proc) {
	r.preWaiter = sim.NewWaiter(p)
	r.prefillIdle = sim.NewWaiter(p)
	for r.nextArr < len(r.reqs) {
		q := &r.reqs[r.nextArr]
		now := p.Now()
		if q.arrival == unreleased {
			r.prefillWaiting = true
			r.prefillIdle.Wait()
			continue
		}
		if q.arrival > now {
			p.Sleep(q.arrival - now)
			continue
		}
		if r.inflight >= r.cfg.MaxBatch || !r.kvFits(q) {
			r.prefillWaiting = true
			r.prefillIdle.Wait()
			continue
		}
		r.reserve(q, now)
		r.runPrefill(q)
	}
}

// serveDecode is the disaggregated decode proc on node 1: a pure token
// generation loop over whatever the prefill node has handed over.
func (r *Runner) serveDecode(p *sim.Proc) {
	r.stepWaiter = sim.NewWaiter(p)
	r.decodeIdle = sim.NewWaiter(p)
	for r.done < len(r.reqs) {
		r.admitReady()
		if r.bn == 0 {
			r.decodeWaiting = true
			r.decodeIdle.Wait()
			continue
		}
		r.decodeStep()
	}
}

// Run simulates the scenario to completion and returns its result.
func (r *Runner) Run() (*Result, error) {
	if r.cfg.Disaggregated {
		r.eng.Go("serve-prefill", r.servePrefill)
		r.eng.Go("serve-decode", r.serveDecode)
	} else {
		r.eng.Go("serve", r.serveColocated)
	}
	end := r.cluster.RunSim()
	if live := r.cluster.SimLiveProcs(); live != 0 {
		return nil, fmt.Errorf("serve: %s deadlocked with %d live procs", r.cfg.Name(), live)
	}
	if r.done != len(r.reqs) {
		return nil, fmt.Errorf("serve: %s completed %d of %d requests", r.cfg.Name(), r.done, len(r.reqs))
	}
	return r.result(end), nil
}

// Run simulates one serving scenario end to end.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Topo != topology.PaperTopo {
		return runDC(cfg)
	}
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}
