// Package llmbw's top-level benchmark harness: one benchmark per table and
// figure of the paper. Each benchmark regenerates the corresponding result
// on the simulated cluster and reports the key quantity as a custom metric
// so `go test -bench=.` reproduces the paper's evaluation end to end.
//
// Absolute wall-clock numbers measure the simulator, not the hardware; the
// custom metrics (TFLOP/s, GB, GB/s) are the reproduced results. Run
// `go run ./cmd/bwchar all` for the full side-by-side tables.
package llmbw

import (
	"bytes"
	"testing"

	"llmbw/internal/collective"
	"llmbw/internal/core"
	"llmbw/internal/fabric"
	"llmbw/internal/memory"
	"llmbw/internal/model"
	"llmbw/internal/sim"
	"llmbw/internal/stress"
	"llmbw/internal/topology"
	"llmbw/internal/train"
)

// benchOpts keeps per-iteration simulation cost bounded.
var benchOpts = core.Options{Iterations: 2, Warmup: 1, PatternSeconds: 10, StressSeconds: 5}

// benchExperiment regenerates one experiment per benchmark iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := core.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(&buf, benchOpts); err != nil {
			b.Fatal(err)
		}
		if buf.Len() == 0 {
			b.Fatal("experiment produced no output")
		}
	}
}

func BenchmarkFig1ModelTrend(b *testing.B)        { benchExperiment(b, "fig1") }
func BenchmarkFig2Topology(b *testing.B)          { benchExperiment(b, "fig2") }
func BenchmarkFig3RoceLatency(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4StressBandwidth(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig5Timelines(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6ModelSize(b *testing.B)         { benchExperiment(b, "fig6") }
func BenchmarkFig7Throughput(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig8Tradeoff(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9NVLinkPattern(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10DualNodePatterns(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11Consolidation(b *testing.B)    { benchExperiment(b, "fig11") }
func BenchmarkFig12OffloadPatterns(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13LargestModel(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14NvmeConfigs(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkTable1Capability(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2Setup(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkTable3Bandwidths(b *testing.B)      { benchExperiment(b, "table3") }
func BenchmarkTable5Sensitivity(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkTable6NvmePlacement(b *testing.B)   { benchExperiment(b, "table6") }

// BenchmarkTable4BandwidthUtilization regenerates the paper's central table
// and reports headline per-class averages of the ZeRO-3 dual-node row.
func BenchmarkTable4BandwidthUtilization(b *testing.B) {
	var res *train.Result
	for i := 0; i < b.N; i++ {
		cfg := train.Config{Strategy: train.ZeRO3, Nodes: 2, Iterations: 2, Warmup: 1}
		cfg.Model = model.NewGPT(cfg.Profile().MaxLayers(model.DefaultBatchSize, 4))
		var err error
		res, err = train.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Stats[fabric.NVLink].Avg/1e9, "NVLink-GB/s")
	b.ReportMetric(res.Stats[fabric.RoCE].Avg/1e9, "RoCE-GB/s")
	b.ReportMetric(res.Stats[fabric.XGMI].Avg/1e9, "xGMI-GB/s")
	// Full 17-row table:
	benchExperiment(b, "table4")
}

// ---- headline-metric benchmarks: the numbers the abstract quotes ----

func benchTrainMetric(b *testing.B, cfg train.Config) {
	var res *train.Result
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Iterations = 2
		c.Warmup = 1
		if c.Model.Layers == 0 {
			c.Model = model.NewGPT(c.Profile().MaxLayers(model.DefaultBatchSize, 4))
		}
		var err error
		res, err = train.Run(c)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AttainedTFLOPs, "TFLOP/s")
	b.ReportMetric(res.Config.Model.ParamsB(), "Bparams")
	b.ReportMetric(res.IterTime.ToSeconds()*1000, "ms/iter")
}

func BenchmarkTrainDDPSingleNode(b *testing.B) {
	benchTrainMetric(b, train.Config{Strategy: train.DDP, Nodes: 1})
}

func BenchmarkTrainMegatronDualNode(b *testing.B) {
	benchTrainMetric(b, train.Config{Strategy: train.Megatron, Nodes: 2})
}

func BenchmarkTrainZeRO3DualNode(b *testing.B) {
	benchTrainMetric(b, train.Config{Strategy: train.ZeRO3, Nodes: 2})
}

func BenchmarkTrainZeRO2CPUOffload(b *testing.B) {
	benchTrainMetric(b, train.Config{Strategy: train.ZeRO2, Offload: memory.CPUOffload})
}

func BenchmarkTrainZeROInfinity2xNVMe(b *testing.B) {
	benchTrainMetric(b, train.Config{Strategy: train.ZeRO3, Offload: memory.NVMeOptimizer})
}

// ---- substrate micro-benchmarks ----

// BenchmarkSimEngineEvents measures raw event throughput of the
// discrete-event core.
func BenchmarkSimEngineEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < 10000 {
				eng.Schedule(1, tick)
			}
		}
		eng.Schedule(1, tick)
		eng.Run()
	}
}

// BenchmarkFabricFairShare measures the max-min fair-share recomputation
// under churn: 64 flows over 8 shared links.
func BenchmarkFabricFairShare(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		net := fabric.NewNetwork(eng)
		links := make([]*fabric.Link, 8)
		for j := range links {
			links[j] = fabric.NewLink("l", fabric.NVLink, 0, 10e9, 0)
		}
		for j := 0; j < 64; j++ {
			path := []*fabric.Link{links[j%8], links[(j+3)%8]}
			net.StartFlow(&fabric.Flow{Path: path, Bytes: 1e8 * float64(1+j%5)}, nil)
		}
		eng.Run()
	}
}

// BenchmarkFabricFairShareSteady measures steady-state resharing: 64
// long-lived flows over 8 shared links complete and restart continuously, so
// every completion re-runs component-wise progressive filling with all
// scratch state warm. This is the path every simulated second of every
// experiment exercises thousands of times; it must not allocate.
func BenchmarkFabricFairShareSteady(b *testing.B) {
	eng := sim.New()
	net := fabric.NewNetwork(eng)
	links := make([]*fabric.Link, 8)
	for j := range links {
		links[j] = fabric.NewLink("l", fabric.NVLink, 0, 10e9, 0)
	}
	flows := make([]*fabric.Flow, 64)
	restart := make([]func(), 64)
	for j := range flows {
		j := j
		// ~0.6 GB/s fair share per flow: each flow completes roughly every
		// millisecond and immediately restarts itself.
		flows[j] = &fabric.Flow{
			Path:  []*fabric.Link{links[j%8], links[(j+3)%8]},
			Bytes: 6e5 + 1e4*float64(j%5),
		}
		restart[j] = func() { net.StartFlow(flows[j], restart[j]) }
	}
	for j := range flows {
		net.StartFlow(flows[j], restart[j])
	}
	// Warm up scratch buffers, event pool and telemetry windows.
	end := eng.RunUntil(eng.Now() + 100*sim.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end += 10 * sim.Millisecond
		eng.RunUntil(end)
	}
}

// BenchmarkCollectiveAllReduce measures an 8-rank dual-node ring all-reduce
// of 1 GB through the fluid-flow fabric.
func BenchmarkCollectiveAllReduce(b *testing.B) {
	b.ReportAllocs()
	var dur sim.Time
	for i := 0; i < b.N; i++ {
		c := topology.New(topology.DefaultConfig(2))
		g := collective.NewGroup(c, collective.NodeMajorRanks(2, 4))
		c.Eng.Go("driver", func(p *sim.Proc) {
			g.Run(p, collective.AllReduce, 1e9)
		})
		dur = c.Eng.Run()
	}
	b.ReportMetric(dur.ToSeconds()*1000, "simulated-ms")
}

// benchCollectiveSteady is the repeated-collective macro-benchmark: one
// cluster, one group, the same 8-rank dual-node all-reduce issued back to
// back — the steady state every training iteration lives in. With compiled
// plans the shape is built once and replayed (zero allocations per issue);
// without, flows, stream caps and closures are rebuilt per issue. The pair
// quantifies the win recorded in BENCH_collective.json.
func benchCollectiveSteady(b *testing.B, compiled bool) {
	defer func(old bool) { collective.CompiledPlans = old }(collective.CompiledPlans)
	collective.CompiledPlans = compiled
	cfg := topology.DefaultConfig(2)
	cfg.Window = sim.Time(1) << 60 // telemetry buckets must not grow with virtual time
	c := topology.New(cfg)
	g := collective.NewGroup(c, collective.NodeMajorRanks(2, 4))
	remaining := 0
	var restart func()
	restart = func() {
		remaining--
		if remaining > 0 {
			g.Start(collective.AllReduce, 1e9, restart)
		}
	}
	// Warm up: compile the plan, grow the fabric registries and event pool.
	remaining = 3
	g.Start(collective.AllReduce, 1e9, restart)
	c.Eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	remaining = b.N
	g.Start(collective.AllReduce, 1e9, restart)
	c.Eng.Run()
}

func BenchmarkCollectiveReplaySteady(b *testing.B)  { benchCollectiveSteady(b, true) }
func BenchmarkCollectiveRebuildSteady(b *testing.B) { benchCollectiveSteady(b, false) }

// BenchmarkStressGPURoCE measures the Fig 4 GPUDirect stress scenario.
func BenchmarkStressGPURoCE(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		res := stress.GPURoCEStress(false, 5*sim.Second)
		frac = res.AttainedFraction(fabric.RoCE)
	}
	b.ReportMetric(frac*100, "%-of-theoretical")
}

// ---- ablation and what-if benchmarks (DESIGN.md's design-choice studies) ----

func BenchmarkAblationXbarContention(b *testing.B)  { benchExperiment(b, "ext-xbar") }
func BenchmarkAblationCheckpointing(b *testing.B)   { benchExperiment(b, "ext-ckpt") }
func BenchmarkWhatIfRoCEBandwidth(b *testing.B)     { benchExperiment(b, "ext-roce") }
func BenchmarkWhatIfNVMeScaling(b *testing.B)       { benchExperiment(b, "ext-nvme-scale") }
func BenchmarkWhatIfBatchSize(b *testing.B)         { benchExperiment(b, "ext-batch") }
func BenchmarkExtensionHybridParallel(b *testing.B) { benchExperiment(b, "ext-hybrid") }

// BenchmarkTrainMegatronHybridDual reports the hybrid TP=4/PP=2 dual-node
// headline, the extension's key configuration.
func BenchmarkTrainMegatronHybridDual(b *testing.B) {
	benchTrainMetric(b, train.Config{
		Strategy: train.Megatron, Nodes: 2,
		TensorParallel: 4, PipelineParallel: 2,
	})
}
