GO ?= go

.PHONY: check test build vet bench clean

## check: the full gate — vet, build, and race-enabled tests.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## bench: run the hot-path benchmarks and record machine-readable results.
bench:
	$(GO) test -run '^$$' -bench 'FabricFairShare|SimEngineEvents|CollectiveAllReduce' -benchmem -json . > BENCH_fabric.json
	@grep -o '"Output":"Benchmark[^"]*' BENCH_fabric.json | grep -o 'Benchmark[A-Za-z]*' | sort -u

clean:
	rm -f BENCH_fabric.json
