GO ?= go
# FUZZTIME bounds each fuzz target in fuzz-smoke; CI's nightly job raises it.
FUZZTIME ?= 10s

.PHONY: check test build vet lint lint-baseline lint-report race fuzz-smoke bench serve-smoke clean

## check: the full correctness gate — vet, build, the simlint determinism &
## invariant analysis, the race-enabled test suite, and a short fuzz smoke of
## the fabric fair-share property suite.
check: vet build lint race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## lint: run the repository's static determinism/invariant analysis
## (includes the inter-procedural handle-release / capepoch-guard /
## steady-alloc / lookahead-positive rules).
lint:
	$(GO) run ./cmd/simlint ./...

## lint-baseline: fail on any drift from the committed lint.baseline.json —
## new findings AND stale pinned entries both count as drift.
lint-baseline:
	$(GO) run ./cmd/simlint -baseline lint.baseline.json ./...

## lint-report: write the machine-readable findings report CI archives next
## to the benchmark JSON. Never fails on findings — lint-baseline gates.
lint-report:
	$(GO) run ./cmd/simlint -json ./... > SIMLINT.json || true

test:
	$(GO) test ./...

## race: the whole test suite under the race detector (the PR-1 parallel
## runner and the train run-cache are the concurrency hot spots).
race:
	$(GO) test -race ./...

## fuzz-smoke: run every fuzz target in internal/fabric for FUZZTIME each.
fuzz-smoke:
	@set -e; for f in $$($(GO) test -list '^Fuzz' ./internal/fabric | grep '^Fuzz'); do \
		echo "fuzz-smoke: $$f for $(FUZZTIME)"; \
		$(GO) test -run '^$$' -fuzz "^$$f$$" -fuzztime $(FUZZTIME) ./internal/fabric; \
	done

## bench: run the hot-path benchmarks and record machine-readable results —
## the substrate micro-benchmarks in BENCH_fabric.json, the repeated-
## collective replay-vs-rebuild macro-benchmark in BENCH_collective.json,
## the schedule-IR replay-vs-imperative iteration benchmark (which pins
## the compiled path at zero steady-state allocations) in BENCH_train.json,
## and the sharded-engine serial-vs-parallel steady-state scaling grid
## (1/2/4 shards at 2/8/16 nodes) in BENCH_sim.json, and the datacenter-
## collective grid (flat vs 2-level vs multi-ring × 16/64/256 nodes ×
## 1/4/8 shards, with allocs/op pinning the zero-alloc replay) in
## BENCH_topo.json, and the serving-layer cold-vs-warm request benchmark
## (cache miss re-simulates a 64-node fat-tree; cache hit replays the
## memoized result, with the warm probe pinned at 0 allocs/op) together
## with the inference decode-step replay benchmark (ServeDecodeSteady,
## the serving layer's zero-alloc steady loop) in BENCH_serve.json.
bench:
	$(GO) test -run '^$$' -bench 'FabricFairShare|SimEngineEvents|CollectiveAllReduce' -benchmem -json . > BENCH_fabric.json
	$(GO) test -run '^$$' -bench 'CollectiveReplaySteady|CollectiveRebuildSteady' -benchmem -json . > BENCH_collective.json
	$(GO) test -run '^$$' -bench 'ScheduleReplaySteady|ScheduleLegacySteady' -benchmem -json ./internal/train > BENCH_train.json
	$(GO) test -run '^$$' -bench 'ShardedEngineSteady' -benchmem -json ./internal/sim > BENCH_sim.json
	$(GO) test -run '^$$' -bench 'HierarchicalAllReduce' -benchmem -json ./internal/collective > BENCH_topo.json
	$(GO) test -run '^$$' -bench 'ServeColdRun|ServeWarmRun|ServeWarmSweep|ScenarioCacheWarmGet|ServeDecodeSteady' -benchmem -json ./cmd/servesim ./internal/scenario ./internal/serve > BENCH_serve.json
	@grep -oh '"Output":"Benchmark[^"]*' BENCH_fabric.json BENCH_collective.json BENCH_train.json BENCH_sim.json BENCH_topo.json BENCH_serve.json | grep -o 'Benchmark[A-Za-z]*' | sort -u

## serve-smoke: boot the servesim daemon, issue one query, probe /stats, and
## shut it down — the same liveness check CI runs.
serve-smoke: build
	./scripts/serve_smoke.sh

clean:
	rm -f BENCH_fabric.json BENCH_collective.json BENCH_train.json BENCH_sim.json BENCH_topo.json BENCH_serve.json SIMLINT.json
