#!/bin/sh
# serve_smoke.sh boots the servesim daemon on a throwaway port, issues one
# /run and one /serve query, checks that /healthz answers and that /stats
# reports both result tiers, then sends SIGTERM and verifies the daemon
# drains and exits cleanly. Exercised by `make serve-smoke` and the CI
# serve-smoke job.
set -eu

ADDR="127.0.0.1:18080"
go build -o /tmp/servesim ./cmd/servesim
/tmp/servesim -addr "$ADDR" -parallel 2 -drain 5s &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (up to ~5s).
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "serve-smoke: daemon never came up" >&2; exit 1; }
	sleep 0.1
done

RUN=$(curl -sf -X POST "http://$ADDR/run" \
	-d '{"strategy":"ddp","layers":2,"iterations":1,"warmup":1}')
echo "$RUN" | grep -q '"attained_tflops"' || {
	echo "serve-smoke: /run response missing summary fields: $RUN" >&2
	exit 1
}

SERVE=$(curl -sf -X POST "http://$ADDR/serve" \
	-d '{"requests":8,"prompt_tokens":128,"decode_tokens":8}')
echo "$SERVE" | grep -q '"goodput_rps"' || {
	echo "serve-smoke: /serve response missing latency fields: $SERVE" >&2
	exit 1
}

STATS=$(curl -sf "http://$ADDR/stats")
for TIER in '"train.results"' '"serve.results"'; do
	echo "$STATS" | grep -q "$TIER" || {
		echo "serve-smoke: /stats missing tier $TIER: $STATS" >&2
		exit 1
	}
done

# Graceful shutdown: SIGTERM must drain and exit zero within the deadline.
kill -TERM "$PID"
if ! wait "$PID"; then
	echo "serve-smoke: daemon exited non-zero on SIGTERM" >&2
	exit 1
fi
trap - EXIT

echo "serve-smoke: ok"
