#!/bin/sh
# serve_smoke.sh boots the servesim daemon on a throwaway port, issues one
# /run query, checks that /stats reports the result tier, and shuts the
# daemon down. Exercised by `make serve-smoke` and the CI serve-smoke job.
set -eu

ADDR="127.0.0.1:18080"
go build -o /tmp/servesim ./cmd/servesim
/tmp/servesim -addr "$ADDR" -parallel 2 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the listener (up to ~5s).
i=0
until curl -sf "http://$ADDR/stats" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "serve-smoke: daemon never came up" >&2; exit 1; }
	sleep 0.1
done

RUN=$(curl -sf -X POST "http://$ADDR/run" \
	-d '{"strategy":"ddp","layers":2,"iterations":1,"warmup":1}')
echo "$RUN" | grep -q '"attained_tflops"' || {
	echo "serve-smoke: /run response missing summary fields: $RUN" >&2
	exit 1
}

STATS=$(curl -sf "http://$ADDR/stats")
echo "$STATS" | grep -q '"train.results"' || {
	echo "serve-smoke: /stats missing the result tier: $STATS" >&2
	exit 1
}

echo "serve-smoke: ok"
