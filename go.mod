module llmbw

go 1.22
